#include "src/optimizer/optimizer.h"

#include "src/core/rules.h"
#include "src/optimizer/classic_rules.h"

namespace gapply {

Optimizer::Options Optimizer::Options::AllDisabled() {
  Options o;
  o.push_select_into_pgq = false;
  o.push_project_into_pgq = false;
  o.projection_before_gapply = false;
  o.selection_before_gapply = false;
  o.gapply_to_groupby = false;
  o.group_selection_exists = false;
  o.group_selection_aggregate = false;
  o.invariant_grouping = false;
  o.classic_pushdown = false;
  return o;
}

const std::vector<Optimizer::Options::Toggle>&
Optimizer::Options::RuleToggles() {
  static const std::vector<Toggle> kToggles = {
      {"ClassicPushdown", &Options::classic_pushdown},
      {"PushSelectIntoPGQ", &Options::push_select_into_pgq},
      {"PushProjectIntoPGQ", &Options::push_project_into_pgq},
      {"SelectionBeforeGApply", &Options::selection_before_gapply},
      {"ProjectionBeforeGApply", &Options::projection_before_gapply},
      {"GApplyToGroupBy", &Options::gapply_to_groupby},
      {"InvariantGrouping", &Options::invariant_grouping},
      {"GroupSelectionExists", &Options::group_selection_exists},
      {"GroupSelectionAggregate", &Options::group_selection_aggregate},
  };
  return kToggles;
}

Optimizer::Optimizer(const Catalog* catalog, const StatsManager* stats,
                     Options options)
    : options_(options), cost_model_(catalog, stats) {
  ctx_.catalog = catalog;
  ctx_.stats = stats;
  ctx_.cost_model = &cost_model_;
  ctx_.cost_gate = options.cost_gate;
  ctx_.unsafe_skip_rule_preconditions = options.unsafe_skip_rule_preconditions;

  // Rule order: cheap always-win rewrites first (σ/π motion), then the
  // structural GApply rewrites, then the cost-gated group-selection pair.
  if (options.classic_pushdown) {
    rules_.push_back(std::make_unique<MergeSelectsRule>());
    rules_.push_back(std::make_unique<PushSelectBelowProjectRule>());
    rules_.push_back(std::make_unique<PushSelectBelowJoinRule>());
  }
  if (options.push_select_into_pgq) {
    rules_.push_back(std::make_unique<core::PushSelectIntoPgqRule>());
  }
  if (options.push_project_into_pgq) {
    rules_.push_back(std::make_unique<core::PushProjectIntoPgqRule>());
  }
  if (options.selection_before_gapply) {
    rules_.push_back(std::make_unique<core::SelectionBeforeGApplyRule>());
  }
  if (options.projection_before_gapply) {
    rules_.push_back(std::make_unique<core::ProjectionBeforeGApplyRule>());
  }
  if (options.gapply_to_groupby) {
    rules_.push_back(std::make_unique<core::GApplyToGroupByRule>());
  }
  if (options.invariant_grouping) {
    rules_.push_back(std::make_unique<core::InvariantGroupingRule>());
  }
  if (options.group_selection_exists) {
    rules_.push_back(std::make_unique<core::GroupSelectionExistsRule>());
  }
  if (options.group_selection_aggregate) {
    rules_.push_back(std::make_unique<core::GroupSelectionAggregateRule>());
  }
}

Optimizer::~Optimizer() = default;

double Optimizer::EstimateRowsOrUnknown(const LogicalOp& node) const {
  Result<PlanEstimate> est = cost_model_.Estimate(node);
  return est.ok() ? est->rows : -1;
}

Result<bool> Optimizer::ApplyAt(LogicalOpPtr* node) {
  bool changed = false;
  bool fired = true;
  int guard = 0;
  while (fired && guard++ < 32) {
    fired = false;
    // Priced up front: once a rule fires the pre-rewrite subtree is gone.
    const double rows_before = EstimateRowsOrUnknown(**node);
    for (const std::unique_ptr<Rule>& rule : rules_) {
      ASSIGN_OR_RETURN(bool did, rule->Apply(node, &ctx_));
      if (did) {
        fired_.push_back(rule->name());
        trace_.push_back({rule->name(), rows_before,
                          EstimateRowsOrUnknown(**node)});
        fired = true;
        changed = true;
        break;  // node type may have changed: restart the rule list
      }
    }
  }
  return changed;
}

Result<bool> Optimizer::Pass(LogicalOpPtr* node) {
  ASSIGN_OR_RETURN(bool changed, ApplyAt(node));
  LogicalOp* op = node->get();
  for (size_t i = 0; i < op->num_children(); ++i) {
    LogicalOpPtr child = op->TakeChild(i);
    ASSIGN_OR_RETURN(bool child_changed, Pass(&child));
    changed = changed || child_changed;
    op->SetChild(i, std::move(child));
  }
  if (op->type() == LogicalOpType::kGApply) {
    auto* ga = static_cast<LogicalGApply*>(op);
    LogicalOpPtr pgq = ga->TakePgq();
    // Everything below this point is a per-group query; rules that would
    // introduce operators outside the PGQ set (see OptimizerContext::in_pgq)
    // check the flag and stand down. Saved/restored rather than set/cleared
    // because GApply nests.
    const bool saved_in_pgq = ctx_.in_pgq;
    ctx_.in_pgq = true;
    Result<bool> pgq_changed = Pass(&pgq);
    ctx_.in_pgq = saved_in_pgq;
    RETURN_NOT_OK(pgq_changed.status());
    changed = changed || *pgq_changed;
    ga->SetPgq(std::move(pgq));
  }
  return changed;
}

Result<LogicalOpPtr> Optimizer::Optimize(LogicalOpPtr plan) {
  fired_.clear();
  trace_.clear();
  if (plan == nullptr) {
    return Status::InvalidArgument("Optimize: null plan");
  }
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    ASSIGN_OR_RETURN(bool changed, Pass(&plan));
    if (!changed) break;
  }
  return plan;
}

}  // namespace gapply
