#include "src/optimizer/classic_rules.h"

#include <set>

#include "src/core/analyses.h"

namespace gapply {

Result<bool> MergeSelectsRule::Apply(LogicalOpPtr* node, OptimizerContext*) {
  if ((*node)->type() != LogicalOpType::kSelect) return false;
  auto* outer = static_cast<LogicalSelect*>(node->get());
  if (outer->child(0)->type() != LogicalOpType::kSelect) return false;
  auto* inner = static_cast<LogicalSelect*>(outer->child(0));

  ExprPtr combined =
      And(inner->predicate().Clone(), outer->predicate().Clone());
  LogicalOpPtr inner_owned = outer->TakeChild(0);
  LogicalOpPtr grandchild =
      static_cast<LogicalSelect*>(inner_owned.get())->TakeChild(0);
  *node = std::make_unique<LogicalSelect>(std::move(grandchild),
                                          std::move(combined));
  return true;
}

Result<bool> PushSelectBelowJoinRule::Apply(LogicalOpPtr* node,
                                            OptimizerContext*) {
  if ((*node)->type() != LogicalOpType::kSelect) return false;
  auto* select = static_cast<LogicalSelect*>(node->get());
  if (select->child(0)->type() != LogicalOpType::kJoin) return false;
  auto* join = static_cast<LogicalJoin*>(select->child(0));

  const int left_width =
      static_cast<int>(join->child(0)->output_schema().num_columns());
  const int total_width =
      static_cast<int>(join->output_schema().num_columns());

  std::set<int> used;
  select->predicate().CollectColumns(&used);
  if (used.empty()) return false;

  bool all_left = true;
  bool all_right = true;
  for (int c : used) {
    if (c >= left_width) all_left = false;
    if (c < left_width) all_right = false;
  }
  if (!all_left && !all_right) return false;

  ExprPtr pred;
  if (all_left) {
    pred = select->predicate().Clone();
  } else {
    std::vector<int> shift(static_cast<size_t>(total_width), -1);
    for (int c = left_width; c < total_width; ++c) {
      shift[static_cast<size_t>(c)] = c - left_width;
    }
    ASSIGN_OR_RETURN(pred,
                     core::RemapExprTree(select->predicate(), shift, {}));
  }

  LogicalOpPtr join_owned = select->TakeChild(0);
  auto* j = static_cast<LogicalJoin*>(join_owned.get());
  LogicalOpPtr left = j->TakeChild(0);
  LogicalOpPtr right = j->TakeChild(1);
  if (all_left) {
    left = std::make_unique<LogicalSelect>(std::move(left), std::move(pred));
  } else {
    right = std::make_unique<LogicalSelect>(std::move(right),
                                            std::move(pred));
  }
  *node = std::make_unique<LogicalJoin>(
      std::move(left), std::move(right), j->left_keys(), j->right_keys(),
      j->residual() == nullptr ? nullptr : j->residual()->Clone(),
      j->null_safe());
  return true;
}

Result<bool> PushSelectBelowProjectRule::Apply(LogicalOpPtr* node,
                                               OptimizerContext*) {
  if ((*node)->type() != LogicalOpType::kSelect) return false;
  auto* select = static_cast<LogicalSelect*>(node->get());
  if (select->child(0)->type() != LogicalOpType::kProject) return false;
  auto* project = static_cast<LogicalProject*>(select->child(0));

  // Map projection outputs back to input columns where they are pure refs.
  std::vector<int> back(project->exprs().size(), -1);
  for (size_t i = 0; i < project->exprs().size(); ++i) {
    const Expr& e = *project->exprs()[i];
    if (e.kind() == ExprKind::kColumnRef) {
      back[i] = static_cast<const ColumnRefExpr&>(e).index();
    }
  }
  Result<ExprPtr> pushed =
      core::RemapExprTree(select->predicate(), back, {});
  if (!pushed.ok()) return false;  // predicate touches a computed column

  LogicalOpPtr project_owned = select->TakeChild(0);
  auto* p = static_cast<LogicalProject*>(project_owned.get());
  LogicalOpPtr filtered = std::make_unique<LogicalSelect>(
      p->TakeChild(0), std::move(*pushed));
  std::vector<ExprPtr> exprs;
  for (const ExprPtr& e : p->exprs()) exprs.push_back(e->Clone());
  *node = std::make_unique<LogicalProject>(std::move(filtered),
                                           std::move(exprs), p->names());
  return true;
}

}  // namespace gapply
