#ifndef GAPPLY_OPTIMIZER_CLASSIC_RULES_H_
#define GAPPLY_OPTIMIZER_CLASSIC_RULES_H_

#include "src/optimizer/optimizer.h"

namespace gapply {

/// Select(Select(x)) → Select(x, a AND b).
class MergeSelectsRule : public Rule {
 public:
  const char* name() const override { return "MergeSelects"; }
  Result<bool> Apply(LogicalOpPtr* node, OptimizerContext* ctx) override;
};

/// Select(Join(L, R)) → Join(Select(L), R) / Join(L, Select(R)) when the
/// predicate's columns come entirely from one side. This is what carries
/// the covering-range selection inserted by SelectionBeforeGApply down to
/// the scans ("the selection ... can then be pushed down using the
/// traditional rules", §4.1).
class PushSelectBelowJoinRule : public Rule {
 public:
  const char* name() const override { return "PushSelectBelowJoin"; }
  Result<bool> Apply(LogicalOpPtr* node, OptimizerContext* ctx) override;
};

/// Select(Project(x)) → Project(Select(x)) when every column the predicate
/// references is a pure column pass-through of the projection.
class PushSelectBelowProjectRule : public Rule {
 public:
  const char* name() const override { return "PushSelectBelowProject"; }
  Result<bool> Apply(LogicalOpPtr* node, OptimizerContext* ctx) override;
};

}  // namespace gapply

#endif  // GAPPLY_OPTIMIZER_CLASSIC_RULES_H_
