#ifndef GAPPLY_OPTIMIZER_COST_MODEL_H_
#define GAPPLY_OPTIMIZER_COST_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "src/plan/logical_plan.h"
#include "src/stats/stats.h"

namespace gapply {

/// \brief Estimated properties of a (sub)plan.
///
/// `column_ndv[i]` is the estimated number of distinct values of output
/// column i, and `column_stats[i]` points at the originating base-table
/// column's statistics when column i is a pass-through of a base column
/// (nullptr for computed columns) — that is what lets range predicates use
/// histograms above joins and inside per-group queries.
struct PlanEstimate {
  double rows = 0;
  double cost = 0;
  std::vector<double> column_ndv;
  std::vector<const ColumnStats*> column_stats;
};

/// \brief Cardinality and cost estimation for logical plans, §4.4-style.
///
/// GApply is costed with the paper's uniformity assumption:
///   cost(GApply) = cost(outer) + partition(outer.rows)
///                + #groups × cost(PGQ on one average group)
/// where #groups = NDV of the grouping columns and the average group has
/// outer.rows / #groups rows with proportionally scaled NDVs.
class CostModel {
 public:
  CostModel(const Catalog* catalog, const StatsManager* stats)
      : catalog_(catalog), stats_(stats) {}

  Result<PlanEstimate> Estimate(const LogicalOp& plan) const;

  /// Default selectivity for predicates the model cannot analyze.
  static constexpr double kDefaultSelectivity = 1.0 / 3.0;

 private:
  using GroupEnv = std::map<std::string, PlanEstimate>;

  Result<PlanEstimate> EstimateNode(const LogicalOp& node,
                                    GroupEnv* env) const;

  /// Selectivity of `pred` against a child with estimate `input`.
  double Selectivity(const Expr& pred, const PlanEstimate& input) const;

  const Catalog* catalog_;
  const StatsManager* stats_;
};

}  // namespace gapply

#endif  // GAPPLY_OPTIMIZER_COST_MODEL_H_
