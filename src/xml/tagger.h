#ifndef GAPPLY_XML_TAGGER_H_
#define GAPPLY_XML_TAGGER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/value.h"
#include "src/xml/view.h"

namespace gapply::xml {

/// \brief Constant-space tagger (paper §2): consumes the sorted-outer-union
/// row stream one tuple at a time and emits XML text.
///
/// Space is bounded by the depth of the view tree (the stack of currently
/// open elements), never by the document size — which is exactly why the
/// input must arrive clustered by element (the paper's reason for the ORDER
/// BY / GApply clustering guarantee).
class Tagger {
 public:
  /// `sink` receives output fragments as they are produced.
  Tagger(const SouqPlan& plan, std::function<void(const std::string&)> sink);

  /// Starts the document (<root> tag).
  void Begin(const std::string& root_element);

  /// Consumes one clustered row.
  Status Feed(const Row& row);

  /// Closes all open elements and the root.
  Status Finish();

 private:
  struct OpenElement {
    int node_id;
    std::vector<Value> keys;
  };

  void Emit(const std::string& text) { sink_(text); }
  void Indent(size_t depth);
  void CloseTo(size_t keep);

  std::vector<SouqNodeMeta> nodes_;
  std::function<void(const std::string&)> sink_;
  std::vector<OpenElement> open_;
  std::string root_element_;
  bool begun_ = false;
};

/// Escapes &, <, > for XML text content.
std::string EscapeXml(const std::string& text);

}  // namespace gapply::xml

#endif  // GAPPLY_XML_TAGGER_H_
