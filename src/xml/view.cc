#include "src/xml/view.h"

#include <algorithm>

#include "src/plan/builder.h"

namespace gapply::xml {

namespace {

struct FlatNode {
  const ViewNode* node;
  int id;
  int parent;  // FlatNode id, -1 for the top node
  int depth;
};

void Flatten(const ViewNode& node, int parent, int depth,
             std::vector<FlatNode>* out) {
  const int id = static_cast<int>(out->size());
  out->push_back({&node, id, parent, depth});
  for (const auto& child : node.children) {
    Flatten(*child, id, depth + 1, out);
  }
}

}  // namespace

Result<SouqPlan> BuildSortedOuterUnion(const XmlView& view) {
  if (view.top == nullptr || view.top->query == nullptr) {
    return Status::InvalidArgument("view has no top node");
  }
  std::vector<FlatNode> nodes;
  Flatten(*view.top, -1, 0, &nodes);

  // Key slot layout: one block of slots per depth, wide enough for the
  // widest element key at that depth.
  int max_depth = 0;
  for (const FlatNode& n : nodes) max_depth = std::max(max_depth, n.depth);
  std::vector<int> depth_width(static_cast<size_t>(max_depth) + 1, 0);
  for (const FlatNode& n : nodes) {
    depth_width[static_cast<size_t>(n.depth)] =
        std::max(depth_width[static_cast<size_t>(n.depth)],
                 static_cast<int>(n.node->element_keys.size()));
  }
  std::vector<int> depth_offset(depth_width.size(), 0);
  int num_key_slots = 0;
  for (size_t d = 0; d < depth_width.size(); ++d) {
    depth_offset[d] = num_key_slots;
    num_key_slots += depth_width[d];
  }

  // Payload layout: a private slot range per node type.
  std::vector<int> payload_offset(nodes.size(), 0);
  int num_payload = 0;
  for (const FlatNode& n : nodes) {
    payload_offset[static_cast<size_t>(n.id)] = num_payload;
    num_payload += static_cast<int>(n.node->content_columns.size());
  }

  // Per node: the "full" plan joining the path from the top node down, the
  // offset of the node's own query columns within it, and the full-schema
  // indexes of each ancestor's (and its own) element keys.
  struct Built {
    LogicalOpPtr full;
    int own_offset = 0;
    // per depth 0..n.depth: element key indexes into `full`'s schema
    std::vector<std::vector<int>> path_keys;
  };
  std::vector<Built> built(nodes.size());

  for (const FlatNode& n : nodes) {
    Built& b = built[static_cast<size_t>(n.id)];
    if (n.parent < 0) {
      b.full = n.node->query->Clone();
      b.own_offset = 0;
    } else {
      const Built& pb = built[static_cast<size_t>(n.parent)];
      const Schema& pschema = nodes[static_cast<size_t>(n.parent)]
                                  .node->query->output_schema();
      const Schema& cschema = n.node->query->output_schema();
      if (n.node->parent_keys.size() != n.node->child_keys.size() ||
          n.node->parent_keys.empty()) {
        return Status::InvalidArgument(
            "child view node needs matching parent/child binding keys");
      }
      std::vector<int> lk;
      std::vector<int> rk;
      for (size_t i = 0; i < n.node->parent_keys.size(); ++i) {
        ASSIGN_OR_RETURN(int pi, pschema.Resolve(n.node->parent_keys[i]));
        lk.push_back(pb.own_offset + pi);
        ASSIGN_OR_RETURN(int ci, cschema.Resolve(n.node->child_keys[i]));
        rk.push_back(ci);
      }
      b.own_offset = static_cast<int>(pb.full->output_schema().num_columns());
      b.full = std::make_unique<LogicalJoin>(pb.full->Clone(),
                                             n.node->query->Clone(),
                                             std::move(lk), std::move(rk));
      b.path_keys = pb.path_keys;
    }
    // Own element keys.
    std::vector<int> own_keys;
    for (const std::string& k : n.node->element_keys) {
      ASSIGN_OR_RETURN(int idx, n.node->query->output_schema().Resolve(k));
      own_keys.push_back(b.own_offset + idx);
    }
    b.path_keys.push_back(std::move(own_keys));
  }

  // Build one projection branch per node and union them.
  SouqPlan out;
  out.num_key_slots = num_key_slots;
  std::vector<LogicalOpPtr> branches;
  for (const FlatNode& n : nodes) {
    const Built& b = built[static_cast<size_t>(n.id)];
    const Schema& full_schema = b.full->output_schema();
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;

    exprs.push_back(Lit(static_cast<int64_t>(n.id)));
    names.push_back("node_id");

    SouqNodeMeta meta;
    meta.element_name = n.node->element_name;
    meta.parent = n.parent;
    meta.depth = n.depth;

    // Key slots, depth-major; this node fills its path's keys, NULL rest.
    for (size_t d = 0; d < depth_width.size(); ++d) {
      for (int slot = 0; slot < depth_width[d]; ++slot) {
        names.push_back("k" + std::to_string(d) + "_" + std::to_string(slot));
        if (d < b.path_keys.size() &&
            slot < static_cast<int>(b.path_keys[d].size())) {
          const int full_idx = b.path_keys[d][static_cast<size_t>(slot)];
          exprs.push_back(Col(full_schema, full_idx));
          if (static_cast<int>(d) == n.depth) {
            meta.key_columns.push_back(1 + depth_offset[d] + slot);
          }
        } else {
          exprs.push_back(Lit(Value::Null()));
        }
      }
    }

    // Payload slots.
    int payload_idx = 0;
    for (const FlatNode& m : nodes) {
      for (size_t c = 0; c < m.node->content_columns.size(); ++c) {
        const std::string& col_name = m.node->content_columns[c];
        names.push_back(m.node->element_name + "_" + col_name);
        if (m.id == n.id) {
          ASSIGN_OR_RETURN(int idx,
                           n.node->query->output_schema().Resolve(col_name));
          exprs.push_back(Col(full_schema, b.own_offset + idx));
          meta.payload_columns.push_back(1 + num_key_slots + payload_idx);
          meta.payload_names.push_back(col_name);
        } else {
          exprs.push_back(Lit(Value::Null()));
        }
        ++payload_idx;
      }
    }

    branches.push_back(std::make_unique<LogicalProject>(
        b.full->Clone(), std::move(exprs), std::move(names)));
    out.nodes.push_back(std::move(meta));
  }

  LogicalOpPtr unioned;
  if (branches.size() == 1) {
    unioned = std::move(branches[0]);
  } else {
    ASSIGN_OR_RETURN(unioned, LogicalUnionAll::Make(std::move(branches)));
  }

  // Cluster: key slots (NULLs sort first, putting parents before their
  // children), then node_id to separate sibling element types.
  std::vector<SortKey> sort;
  for (int s = 0; s < num_key_slots; ++s) sort.push_back({1 + s, true});
  sort.push_back({0, true});
  out.plan = std::make_unique<LogicalOrderBy>(std::move(unioned),
                                              std::move(sort));
  return out;
}

Result<XmlView> MakeSupplierPartsView(const Catalog& catalog) {
  XmlView view;
  view.root_element = "suppliers";

  auto supplier = std::make_unique<ViewNode>();
  supplier->element_name = "supplier";
  ASSIGN_OR_RETURN(supplier->query,
                   PlanBuilder::Scan(catalog, "supplier")
                       .Project({"s_suppkey", "s_name"})
                       .Build());
  supplier->element_keys = {"s_suppkey"};
  supplier->content_columns = {"s_suppkey", "s_name"};

  auto part = std::make_unique<ViewNode>();
  part->element_name = "part";
  ASSIGN_OR_RETURN(
      part->query,
      PlanBuilder::Scan(catalog, "partsupp")
          .Join(PlanBuilder::Scan(catalog, "part"), {"ps_partkey"},
                {"p_partkey"})
          .Project({"ps_suppkey", "p_partkey", "p_name", "p_retailprice"})
          .Build());
  part->parent_keys = {"s_suppkey"};
  part->child_keys = {"ps_suppkey"};
  part->element_keys = {"p_partkey"};
  part->content_columns = {"p_name", "p_retailprice"};

  supplier->children.push_back(std::move(part));
  view.top = std::move(supplier);
  return view;
}

}  // namespace gapply::xml
