#include "src/xml/tagger.h"

#include <algorithm>

namespace gapply::xml {

std::string EscapeXml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Tagger::Tagger(const SouqPlan& plan,
               std::function<void(const std::string&)> sink)
    : nodes_(plan.nodes), sink_(std::move(sink)) {}

void Tagger::Indent(size_t depth) {
  Emit(std::string(2 * (depth + 1), ' '));
}

void Tagger::Begin(const std::string& root_element) {
  root_element_ = root_element;
  Emit("<" + root_element_ + ">\n");
  begun_ = true;
}

void Tagger::CloseTo(size_t keep) {
  while (open_.size() > keep) {
    const OpenElement& top = open_.back();
    Indent(open_.size() - 1);
    Emit("</" + nodes_[static_cast<size_t>(top.node_id)].element_name +
         ">\n");
    open_.pop_back();
  }
}

Status Tagger::Feed(const Row& row) {
  if (!begun_) return Status::Internal("Tagger::Begin not called");
  if (row.empty() || row[0].is_null()) {
    return Status::InvalidArgument("row without node id");
  }
  const int node_id = static_cast<int>(row[0].int_val());
  if (node_id < 0 || static_cast<size_t>(node_id) >= nodes_.size()) {
    return Status::InvalidArgument("unknown node id in tagged stream");
  }
  // The element's ancestor chain, top-down.
  std::vector<int> chain;
  for (int n = node_id; n >= 0; n = nodes_[static_cast<size_t>(n)].parent) {
    chain.push_back(n);
  }
  std::reverse(chain.begin(), chain.end());

  // Keep the open elements that match this row's ancestry (same node id and
  // same key values); close the rest.
  size_t keep = 0;
  while (keep < open_.size() && keep + 1 < chain.size()) {
    const OpenElement& oe = open_[keep];
    if (oe.node_id != chain[keep]) break;
    const SouqNodeMeta& ancestor =
        nodes_[static_cast<size_t>(chain[keep])];
    bool same = true;
    for (size_t k = 0; k < ancestor.key_columns.size(); ++k) {
      const Value& v =
          row[static_cast<size_t>(ancestor.key_columns[k])];
      if (!v.Equals(oe.keys[k])) {
        same = false;
        break;
      }
    }
    if (!same) break;
    ++keep;
  }
  CloseTo(keep);

  // Open any missing ancestors (normally none: parents' rows sort first)
  // and then this element.
  for (size_t d = keep; d < chain.size(); ++d) {
    const SouqNodeMeta& m = nodes_[static_cast<size_t>(chain[d])];
    OpenElement oe;
    oe.node_id = chain[d];
    for (int kc : m.key_columns) {
      oe.keys.push_back(row[static_cast<size_t>(kc)]);
    }
    Indent(open_.size());
    Emit("<" + m.element_name + ">\n");
    open_.push_back(std::move(oe));
    if (chain[d] == node_id) {
      for (size_t p = 0; p < m.payload_columns.size(); ++p) {
        const Value& v =
            row[static_cast<size_t>(m.payload_columns[p])];
        Indent(open_.size());
        Emit("<" + m.payload_names[p] + ">" + EscapeXml(v.ToString()) +
             "</" + m.payload_names[p] + ">\n");
      }
    }
  }
  return Status::OK();
}

Status Tagger::Finish() {
  if (!begun_) return Status::Internal("Tagger::Begin not called");
  CloseTo(0);
  Emit("</" + root_element_ + ">\n");
  begun_ = false;
  return Status::OK();
}

}  // namespace gapply::xml
