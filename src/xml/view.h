#ifndef GAPPLY_XML_VIEW_H_
#define GAPPLY_XML_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "src/plan/logical_plan.h"
#include "src/storage/catalog.h"

namespace gapply::xml {

/// \brief One element type of an XML view of relational data, following the
/// schema-tree representation of XPeranto (paper's Figure 1): each node has
/// an associated query, children are bound to parents through join columns
/// (the paper's binding variable $s), and selected columns render as
/// sub-elements.
struct ViewNode {
  std::string element_name;  // tag emitted per row, e.g. "supplier"

  /// Rows of this node. For child nodes, the query's output must include
  /// `child_keys` so rows can be bound to their parent element.
  LogicalOpPtr query;

  /// Parent binding: parent_keys name columns of the parent node's query
  /// output; child_keys name columns of this node's query output. Empty for
  /// the node directly under the document root.
  std::vector<std::string> parent_keys;
  std::vector<std::string> child_keys;

  /// Columns (of `query`'s output) identifying one element instance — the
  /// clustering key for this level.
  std::vector<std::string> element_keys;

  /// Columns rendered as sub-elements, tagged with the column name.
  std::vector<std::string> content_columns;

  std::vector<std::unique_ptr<ViewNode>> children;
};

/// \brief A whole view: a document root tag plus the top element node.
struct XmlView {
  std::string root_element;  // e.g. "suppliers"
  std::unique_ptr<ViewNode> top;
};

/// \brief Tagger-facing description of the sorted-outer-union output.
struct SouqNodeMeta {
  std::string element_name;
  int parent = -1;                 // node id of the parent element (-1 = root)
  int depth = 0;                   // 0 = directly under the document root
  std::vector<int> key_columns;    // this element's key slots in the output
  std::vector<int> payload_columns;
  std::vector<std::string> payload_names;
};

/// \brief The single "sorted outer union" plan (paper §2 / XPeranto [17]):
/// one row per element of the document, schema
///   (node_id, key slots per depth, payload slots per node type),
/// ordered by key slots (NULLs first) then node_id — exactly the clustering
/// a constant-space tagger needs.
struct SouqPlan {
  LogicalOpPtr plan;
  std::vector<SouqNodeMeta> nodes;  // indexed by node_id
  int num_key_slots = 0;
};

/// Builds the sorted-outer-union plan for `view`.
Result<SouqPlan> BuildSortedOuterUnion(const XmlView& view);

/// Builds the Figure-1 view over the generated TPC-H catalog: supplier
/// elements (s_suppkey, s_name) containing part elements
/// (p_name, p_retailprice) joined through partsupp.
Result<XmlView> MakeSupplierPartsView(const Catalog& catalog);

}  // namespace gapply::xml

#endif  // GAPPLY_XML_VIEW_H_
