#ifndef GAPPLY_XML_XQUERY_H_
#define GAPPLY_XML_XQUERY_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/value.h"
#include "src/expr/aggregate.h"
#include "src/expr/expr.h"

namespace gapply::xml {

/// \brief SQL-level description of a two-level XML view (parent elements
/// each containing the child rows that share `parent_key`) — the shape of
/// the paper's Figure 1 supplier/part view.
struct FlwrViewBinding {
  std::string child_from;   ///< e.g. "partsupp, part"
  std::string child_where;  ///< join conditions, e.g. "ps_partkey = p_partkey"
  std::string parent_key;   ///< element grouping column, e.g. "ps_suppkey"
  /// Table (from child_from) that carries parent_key; aliased when the
  /// outer-union baseline needs a correlated subquery (§2's "partsupp ps1").
  std::string key_table = "";
};

/// The XQuery WHERE forms the paper uses (§4.2).
enum class FlwrCondKind {
  kNone,
  kSomeChild,   ///< Where some $v/child satisfies column <op> literal
  kAggCompare,  ///< Where agg($v/child/column) <op> literal
};

struct FlwrWhere {
  FlwrCondKind kind = FlwrCondKind::kNone;
  std::string column;
  BinaryOp op = BinaryOp::kGt;
  Value literal;
  AggKind agg = AggKind::kAvg;  // kAggCompare only
};

/// One item of the RETURN clause.
struct FlwrReturnItem {
  enum class Kind {
    kChildColumns,     ///< nested For over children returning columns
    kAggregate,        ///< agg($v/child/column)
    kCountCompareAgg,  ///< count($v/child[column <cmp> agg($v/child/column)])
  };
  Kind kind = Kind::kChildColumns;
  std::vector<std::string> columns;  // kChildColumns
  AggKind agg = AggKind::kAvg;
  std::string agg_column;
  BinaryOp cmp = BinaryOp::kGe;  // kCountCompareAgg
};

/// \brief The FLWR subset the paper's examples use: one For over the view's
/// parent elements, an optional Where, and a Return of mixed per-child and
/// per-element items. An empty Return with a Where means "Return $v" (whole
/// element — the group-selection queries of §4.2).
struct FlwrQuery {
  FlwrWhere where;
  std::vector<FlwrReturnItem> ret;
};

/// Push-down translation onto the paper's §3.1 extended syntax: one gapply
/// query whose result is clustered per element. This is the translation the
/// paper argues XQuery middleware should emit once GApply is exposed.
Result<std::string> TranslateToGApplySql(const FlwrQuery& query,
                                         const FlwrViewBinding& view);

/// The classic §2 translation: a sorted-outer-union SQL query with
/// redundant joins and correlated subqueries, no gapply. Used as the
/// baseline in the Figure 8 reproduction.
Result<std::string> TranslateToOuterUnionSql(const FlwrQuery& query,
                                             const FlwrViewBinding& view);

}  // namespace gapply::xml

#endif  // GAPPLY_XML_XQUERY_H_
