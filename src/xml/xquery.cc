#include "src/xml/xquery.h"

namespace gapply::xml {

namespace {

std::string LiteralSql(const Value& v) {
  if (v.type() == TypeId::kString) return "'" + v.ToString() + "'";
  return v.ToString();
}

std::string AggSql(AggKind kind, const std::string& column) {
  switch (kind) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count(" + column + ")";
    case AggKind::kSum:
      return "sum(" + column + ")";
    case AggKind::kAvg:
      return "avg(" + column + ")";
    case AggKind::kMin:
      return "min(" + column + ")";
    case AggKind::kMax:
      return "max(" + column + ")";
  }
  return "?";
}

// Output slot layout across the return items (each branch NULL-pads the
// other items' slots, the paper's outer-union column discipline).
struct SlotLayout {
  std::vector<int> offset;  // per item
  int total = 0;
};

SlotLayout LayoutSlots(const FlwrQuery& query) {
  SlotLayout layout;
  for (const FlwrReturnItem& item : query.ret) {
    layout.offset.push_back(layout.total);
    layout.total += item.kind == FlwrReturnItem::Kind::kChildColumns
                        ? static_cast<int>(item.columns.size())
                        : 1;
  }
  return layout;
}

// Select-list for item `i`: NULLs everywhere except the item's own slots.
std::string PaddedSelectList(const FlwrQuery& query, const SlotLayout& layout,
                             size_t item_index,
                             const std::string& own_slots) {
  std::string out;
  int emitted = 0;
  for (size_t j = 0; j < query.ret.size(); ++j) {
    const int width = query.ret[j].kind ==
                              FlwrReturnItem::Kind::kChildColumns
                          ? static_cast<int>(query.ret[j].columns.size())
                          : 1;
    for (int s = 0; s < width; ++s) {
      if (emitted > 0) out += ", ";
      if (j == item_index) {
        // own_slots is already comma-joined for multi-column items.
        if (s == 0) out += own_slots;
        // Skip the remaining own slots: own_slots covered them.
        s = width - 1;
      } else {
        out += "null";
      }
      ++emitted;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

Status Validate(const FlwrQuery& query) {
  if (query.ret.empty() && query.where.kind == FlwrCondKind::kNone) {
    return Status::InvalidArgument(
        "FLWR query needs a Return clause or a Where clause");
  }
  if (!query.ret.empty() && query.where.kind != FlwrCondKind::kNone) {
    return Status::NotImplemented(
        "combining Where with a non-trivial Return is not supported by the "
        "translator (the paper's examples use one or the other)");
  }
  return Status::OK();
}

}  // namespace

Result<std::string> TranslateToGApplySql(const FlwrQuery& query,
                                         const FlwrViewBinding& view) {
  RETURN_NOT_OK(Validate(query));
  const std::string where_clause =
      view.child_where.empty() ? "" : " where " + view.child_where;
  const std::string tail = " from " + view.child_from + where_clause +
                           " group by " + view.parent_key + " : g";

  // Group selection: Return $v with a Where (§4.2).
  if (query.ret.empty()) {
    std::string pgq;
    if (query.where.kind == FlwrCondKind::kSomeChild) {
      pgq = "select * from g where exists (select " + query.where.column +
            " from g where " + query.where.column + " " +
            BinaryOpName(query.where.op) + " " +
            LiteralSql(query.where.literal) + ")";
    } else {
      pgq = "select * from g where (select " +
            AggSql(query.where.agg, query.where.column) + " from g) " +
            BinaryOpName(query.where.op) + " " +
            LiteralSql(query.where.literal);
    }
    return "select gapply(" + pgq + ")" + tail;
  }

  // Mixed Return items → one union-all branch per item.
  const SlotLayout layout = LayoutSlots(query);
  std::vector<std::string> branches;
  for (size_t i = 0; i < query.ret.size(); ++i) {
    const FlwrReturnItem& item = query.ret[i];
    std::string own;
    std::string branch_where;
    switch (item.kind) {
      case FlwrReturnItem::Kind::kChildColumns:
        own = Join(item.columns, ", ");
        break;
      case FlwrReturnItem::Kind::kAggregate:
        own = AggSql(item.agg, item.agg_column);
        break;
      case FlwrReturnItem::Kind::kCountCompareAgg:
        own = "count(*)";
        branch_where = " where " + item.agg_column + " " +
                       BinaryOpName(item.cmp) + " (select " +
                       AggSql(item.agg, item.agg_column) + " from g)";
        break;
    }
    branches.push_back("select " + PaddedSelectList(query, layout, i, own) +
                       " from g" + branch_where);
  }
  return "select gapply(" + Join(branches, " union all ") + ")" + tail;
}

Result<std::string> TranslateToOuterUnionSql(const FlwrQuery& query,
                                             const FlwrViewBinding& view) {
  RETURN_NOT_OK(Validate(query));
  const std::string base_where =
      view.child_where.empty() ? "" : view.child_where;
  auto with_where = [&](const std::string& extra) {
    if (base_where.empty() && extra.empty()) return std::string();
    if (base_where.empty()) return " where " + extra;
    if (extra.empty()) return " where " + base_where;
    return " where " + base_where + " and " + extra;
  };
  // Correlated subqueries need the outer key table aliased (§2's "ps1").
  auto aliased_from = [&](const std::string& alias) {
    std::string out;
    bool first = true;
    size_t start = 0;
    const std::string& from = view.child_from;
    while (start <= from.size()) {
      size_t comma = from.find(',', start);
      std::string table = from.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      // trim
      while (!table.empty() && table.front() == ' ') table.erase(0, 1);
      while (!table.empty() && table.back() == ' ') table.pop_back();
      if (!first) out += ", ";
      out += table;
      if (table == view.key_table) out += " " + alias;
      first = false;
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return out;
  };

  // Group selection baselines: select the whole element via correlated
  // EXISTS / aggregate subqueries, then re-cluster by the key.
  if (query.ret.empty()) {
    if (view.key_table.empty()) {
      return Status::InvalidArgument(
          "outer-union translation needs view.key_table for correlated "
          "subqueries");
    }
    std::string corr;
    if (query.where.kind == FlwrCondKind::kSomeChild) {
      corr = "exists (select " + query.where.column + " from " +
             view.child_from + with_where(
                 view.parent_key + " = x0." + view.parent_key + " and " +
                 query.where.column + " " + BinaryOpName(query.where.op) +
                 " " + LiteralSql(query.where.literal)) +
             ")";
    } else {
      corr = "(select " + AggSql(query.where.agg, query.where.column) +
             " from " + view.child_from +
             with_where(view.parent_key + " = x0." + view.parent_key) +
             ") " + BinaryOpName(query.where.op) + " " +
             LiteralSql(query.where.literal);
    }
    return "select * from " + aliased_from("x0") + with_where(corr) +
           " order by " + view.parent_key;
  }

  const SlotLayout layout = LayoutSlots(query);
  std::vector<std::string> branches;
  for (size_t i = 0; i < query.ret.size(); ++i) {
    const FlwrReturnItem& item = query.ret[i];
    std::string own;
    std::string branch;
    switch (item.kind) {
      case FlwrReturnItem::Kind::kChildColumns:
        own = Join(item.columns, ", ");
        branch = "select " + view.parent_key + ", " +
                 PaddedSelectList(query, layout, i, own) + " from " +
                 view.child_from + with_where("");
        break;
      case FlwrReturnItem::Kind::kAggregate:
        own = AggSql(item.agg, item.agg_column);
        branch = "select " + view.parent_key + ", " +
                 PaddedSelectList(query, layout, i, own) + " from " +
                 view.child_from + with_where("") + " group by " +
                 view.parent_key;
        break;
      case FlwrReturnItem::Kind::kCountCompareAgg: {
        if (view.key_table.empty()) {
          return Status::InvalidArgument(
              "outer-union translation needs view.key_table for correlated "
              "subqueries");
        }
        // The paper's Q2 pattern: redundant join + correlated aggregate.
        own = "count(*)";
        const std::string corr =
            item.agg_column + " " + BinaryOpName(item.cmp) + " (select " +
            AggSql(item.agg, item.agg_column) + " from " + view.child_from +
            with_where(view.parent_key + " = x0." + view.parent_key) + ")";
        branch = "select " + view.parent_key + ", " +
                 PaddedSelectList(query, layout, i, own) + " from " +
                 aliased_from("x0") + with_where(corr) + " group by " +
                 view.parent_key;
        break;
      }
    }
    branches.push_back(branch);
  }
  return Join(branches, " union all ") + " order by " + view.parent_key;
}

}  // namespace gapply::xml
