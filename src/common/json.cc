#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gapply {

void JsonValue::Set(const std::string& key, JsonValue v) {
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string FormatDouble(double d) {
  if (std::isnan(d) || std::isinf(d)) return "null";  // JSON has no NaN/Inf
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", d);
  return buf;
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<size_t>(indent + 2 * (depth + 1)), ' ')
             : "";
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent + 2 * depth), ' ') : "";
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kInt:
      *out += std::to_string(int_);
      return;
    case Type::kDouble:
      *out += FormatDouble(double_);
      return;
    case Type::kString:
      *out += '"' + JsonEscape(string_) + '"';
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) *out += ',';
        if (pretty) {
          *out += '\n';
          *out += pad;
        }
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        *out += '\n';
        *out += close_pad;
      }
      *out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) *out += ',';
        if (pretty) {
          *out += '\n';
          *out += pad;
        }
        *out += '"' + JsonEscape(members_[i].first) + "\":";
        if (pretty) *out += ' ';
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        *out += '\n';
        *out += close_pad;
      }
      *out += '}';
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::Str(std::move(s));
    }
    if (ConsumeLiteral("null")) return JsonValue::Null();
    if (ConsumeLiteral("true")) return JsonValue::Bool(true);
    if (ConsumeLiteral("false")) return JsonValue::Bool(false);
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj.Set(key, std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.Append(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // Only BMP code points below 0x80 are emitted by our writers;
          // encode anything else as UTF-8 without surrogate handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Error("invalid number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (is_double) {
      return JsonValue::Double(std::strtod(token.c_str(), nullptr));
    }
    errno = 0;
    const long long v = std::strtoll(token.c_str(), nullptr, 10);
    if (errno == ERANGE) {
      return JsonValue::Double(std::strtod(token.c_str(), nullptr));
    }
    return JsonValue::Int(v);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  JsonParser parser(text);
  return parser.Parse();
}

}  // namespace gapply
