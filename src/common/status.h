#ifndef GAPPLY_COMMON_STATUS_H_
#define GAPPLY_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace gapply {

/// Error categories used across the engine. The set is deliberately small;
/// most call sites only distinguish ok from not-ok and surface the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  // caller passed something malformed (bad SQL, bad plan)
  kNotFound,         // missing table / column / binding
  kTypeError,        // expression or schema type mismatch
  kInternal,         // engine invariant violated
  kNotImplemented,
};

/// \brief Outcome of an operation that can fail without a payload.
///
/// Follows the RocksDB/Arrow idiom: no exceptions cross module boundaries;
/// fallible functions return `Status` (or `Result<T>`, see result.h) and
/// callers propagate with RETURN_NOT_OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<CODE>: <message>" string (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace gapply

/// Propagates a non-OK Status from the current function.
#define RETURN_NOT_OK(expr)                        \
  do {                                             \
    ::gapply::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

#endif  // GAPPLY_COMMON_STATUS_H_
