#include "src/common/status.h"

namespace gapply {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace gapply
