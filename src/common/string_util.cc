#include "src/common/string_util.h"

#include <cctype>

namespace gapply {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Repeat(const std::string& s, int n) {
  std::string out;
  for (int i = 0; i < n; ++i) out += s;
  return out;
}

}  // namespace gapply
