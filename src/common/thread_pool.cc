#include "src/common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace gapply {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::DefaultParallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace gapply
