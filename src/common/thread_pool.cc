#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace gapply {

namespace {

/// Shared state of one RunGroup call. Owned by shared_ptr so wake tokens
/// still queued when the group finishes (every task already claimed) find
/// an exhausted cursor and return without touching freed memory.
struct GroupState {
  std::vector<std::function<void()>> tasks;
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t completed = 0;
};

void RunGroupTasks(const std::shared_ptr<GroupState>& g) {
  while (true) {
    const size_t i = g->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= g->tasks.size()) return;
    g->tasks[i]();
    {
      std::lock_guard<std::mutex> lock(g->mu);
      ++g->completed;
    }
    g->done_cv.notify_all();
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::RunGroup(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks[0]();
    return;
  }
  auto g = std::make_shared<GroupState>();
  g->tasks = std::move(tasks);
  // One wake token per pool worker that could usefully help; the caller
  // covers the last task itself.
  const size_t helpers = std::min(size(), g->tasks.size() - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([g] { RunGroupTasks(g); });
  }
  RunGroupTasks(g);
  std::unique_lock<std::mutex> lock(g->mu);
  g->done_cv.wait(lock, [&] { return g->completed == g->tasks.size(); });
}

void RunTaskGroup(ThreadPool* pool, std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks[0]();
    return;
  }
  if (pool != nullptr) {
    pool->RunGroup(std::move(tasks));
    return;
  }
  ThreadPool transient(tasks.size() - 1);
  transient.RunGroup(std::move(tasks));
}

size_t ThreadPool::DefaultParallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace gapply
