#ifndef GAPPLY_COMMON_THREAD_POOL_H_
#define GAPPLY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gapply {

/// \brief A small fixed-size worker pool for intra-operator parallelism.
///
/// Tasks submitted with `Submit` run on one of `num_threads` workers in FIFO
/// order. The pool is reusable: `WaitIdle` blocks until every submitted task
/// has finished, after which more tasks may be submitted. The destructor
/// drains the queue (runs everything already submitted) before joining.
///
/// The pool makes no attempt at work stealing or task priorities — callers
/// that need balanced fan-out (e.g. the parallel GApply executor) submit one
/// long-lived task per worker and distribute fine-grained work through a
/// shared atomic cursor, which keeps queue traffic off the hot path.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Runs all remaining queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Enqueues `task`. Must not be called concurrently with the destructor.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void WaitIdle();

  /// \brief Runs `tasks` to completion and returns. The calling thread
  /// *helps*: it claims tasks from the group alongside the pool workers, so
  /// the group always makes progress even when every pool worker is busy —
  /// which makes nested use safe (a task running on this pool may itself
  /// call RunGroup on the same pool without deadlocking; in the worst case
  /// the nested caller just executes its whole group inline).
  ///
  /// Tasks may run in any order and must not throw. Unlike Submit/WaitIdle,
  /// RunGroup waits only for *its own* tasks, so concurrent groups from
  /// different operators do not serialize behind each other.
  void RunGroup(std::vector<std::function<void()>> tasks);

  /// The degree of parallelism to use when the caller asks for "all the
  /// hardware": std::thread::hardware_concurrency(), clamped to at least 1.
  static size_t DefaultParallelism();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task queued / shutdown
  std::condition_variable idle_cv_;  // signals WaitIdle: a task finished
  size_t active_ = 0;                // tasks currently executing
  bool shutdown_ = false;
};

/// \brief Runs a group of tasks with caller help on `pool`, or — when the
/// caller has no pool (standalone operator tests) — on a transient pool
/// sized for the group. The shared-engine entry point used by every
/// parallel operator (GApply phase 2, Exchange, parallel join build,
/// parallel aggregation).
void RunTaskGroup(ThreadPool* pool, std::vector<std::function<void()>> tasks);

}  // namespace gapply

#endif  // GAPPLY_COMMON_THREAD_POOL_H_
