#ifndef GAPPLY_COMMON_VALUE_H_
#define GAPPLY_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace gapply {

/// SQL types supported by the engine.
enum class TypeId {
  kNull = 0,  // the type of a bare NULL literal; unifies with any type
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// Returns the lowercase SQL-ish name of a type ("int64", "double", ...).
const char* TypeName(TypeId type);

/// True if `type` is kInt64 or kDouble.
bool IsNumeric(TypeId type);

/// \brief A single SQL value: NULL, boolean, 64-bit integer, double, or
/// string.
///
/// Two distinct equality notions exist, mirroring SQL:
///  - `Compare`/`CompareOp` implement expression semantics: any comparison
///    involving NULL yields NULL (three-valued logic).
///  - `Equals`/`Hash` implement *grouping* semantics: NULL equals NULL, so
///    values can key hash tables for GROUP BY / DISTINCT / GApply
///    partitioning.
class Value {
 public:
  /// Constructs NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value Str(std::string v) { return Value(Payload(std::move(v))); }

  TypeId type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  bool bool_val() const { return std::get<bool>(data_); }
  int64_t int_val() const { return std::get<int64_t>(data_); }
  double double_val() const { return std::get<double>(data_); }
  const std::string& str_val() const { return std::get<std::string>(data_); }

  /// Numeric value widened to double. Requires a numeric or bool type.
  double AsDouble() const;

  /// Total order over two non-NULL values of comparable types.
  /// Numerics compare cross-type (int vs double); strings lexicographically.
  /// Returns -1/0/1, or TypeError for incomparable types or NULL inputs.
  static Result<int> Compare(const Value& a, const Value& b);

  /// Grouping equality: NULL == NULL, otherwise same type family and equal.
  /// Int and double with the same numeric value are equal (2 == 2.0).
  bool Equals(const Value& other) const;

  /// Hash consistent with Equals.
  size_t Hash() const;

  /// Rendering used by result printers and the XML tagger.
  /// NULL renders as "NULL"; strings are not quoted.
  std::string ToString() const;

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string>;

  explicit Value(Payload data) : data_(std::move(data)) {}

  Payload data_;
};

/// A tuple of values. Schemas (src/storage/schema.h) give columns names and
/// types; rows are positional.
using Row = std::vector<Value>;

/// Boost-style hash combine: golden-ratio constant plus shift mixing, so
/// that adjacent integer hashes spread over the full word instead of
/// landing in nearby buckets (the old `h * 1000003 ^ v` mix clustered
/// consecutive keys).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

/// Hash of the columns of `row` selected by `cols`, identical to what
/// `RowHash` would produce for the extracted key row. Lets GApply's hash
/// partitioner hash grouping columns in place, without materializing a key
/// row per input row.
size_t HashRowColumns(const Row& row, const std::vector<int>& cols);

/// Grouping-semantics hash/equality functors for containers keyed by rows.
struct RowHash {
  size_t operator()(const Row& row) const;
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

/// True iff the rows are element-wise `Value::Equals`.
bool RowsEqual(const Row& a, const Row& b);

/// Renders a row as "(v1, v2, ...)".
std::string RowToString(const Row& row);

namespace value_ops {

/// SQL arithmetic with NULL propagation and int→double promotion.
/// Integer division by zero and modulo by zero are InvalidArgument errors.
Result<Value> Add(const Value& a, const Value& b);
Result<Value> Subtract(const Value& a, const Value& b);
Result<Value> Multiply(const Value& a, const Value& b);
Result<Value> Divide(const Value& a, const Value& b);
Result<Value> Modulo(const Value& a, const Value& b);
Result<Value> Negate(const Value& a);

/// Comparison kinds for CompareOp.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Three-valued-logic comparison: NULL if either side is NULL, else a bool.
Result<Value> CompareOp(CmpOp op, const Value& a, const Value& b);

/// Three-valued-logic AND / OR / NOT over bool-or-NULL values.
Result<Value> And(const Value& a, const Value& b);
Result<Value> Or(const Value& a, const Value& b);
Result<Value> Not(const Value& a);

}  // namespace value_ops

}  // namespace gapply

#endif  // GAPPLY_COMMON_VALUE_H_
