#ifndef GAPPLY_COMMON_JSON_H_
#define GAPPLY_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"

namespace gapply {

/// \brief Minimal JSON document model shared by the query profiler, the
/// bench emitters, and the CI perf-regression gate (tools/bench_check).
///
/// Objects preserve insertion order (profiles render deterministically and
/// golden tests diff byte-for-byte). Numbers keep an int64/double split so
/// counters round-trip exactly; doubles serialize with %.6g which is enough
/// for millisecond timings. This is intentionally not a general-purpose
/// JSON library: no \uXXXX escapes beyond what Dump emits, no streaming —
/// just what BENCH_*.json and profile payloads need.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Int(int64_t i) {
    JsonValue v;
    v.type_ = Type::kInt;
    v.int_ = i;
    return v;
  }
  static JsonValue Double(double d) {
    JsonValue v;
    v.type_ = Type::kDouble;
    v.double_ = d;
    return v;
  }
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  /// Numeric value as double regardless of int/double storage.
  double number_value() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Array append (value must be an array).
  void Append(JsonValue v) { items_.push_back(std::move(v)); }

  /// Object insert-or-overwrite, preserving first-insertion order.
  void Set(const std::string& key, JsonValue v);

  /// Object lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Serializes. `indent` < 0 emits compact one-line JSON; >= 0 pretty-
  /// prints with that many leading spaces per nesting level step of 2.
  std::string Dump(int indent = -1) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses a JSON document (single value; trailing whitespace allowed).
Result<JsonValue> ParseJson(const std::string& text);

/// Escapes `s` for embedding inside a JSON string literal (no quotes
/// added). Shared by the hand-rolled bench emitters.
std::string JsonEscape(const std::string& s);

}  // namespace gapply

#endif  // GAPPLY_COMMON_JSON_H_
