#ifndef GAPPLY_COMMON_RNG_H_
#define GAPPLY_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace gapply {

/// \brief Small deterministic PRNG (splitmix64 core) used by the TPC-H
/// generator and the property tests.
///
/// Determinism across platforms matters more than statistical quality here:
/// the same seed must produce the same database on every run so that test
/// expectations and benchmark sweeps are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ull) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Lowercase alphabetic string of the given length.
  std::string RandomWord(int length);

 private:
  uint64_t state_;
};

}  // namespace gapply

#endif  // GAPPLY_COMMON_RNG_H_
