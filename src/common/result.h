#ifndef GAPPLY_COMMON_RESULT_H_
#define GAPPLY_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace gapply {

/// \brief A Status plus, when OK, a value of type T.
///
/// The invariant is: `ok()` iff a value is present. Accessing the value of a
/// failed Result aborts in debug builds (engine invariant violation).
template <typename T>
class Result {
 public:
  /// Implicit from error Status (must not be OK).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  /// Implicit from a value (Status is OK).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;           // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace gapply

#define GAPPLY_CONCAT_INNER(a, b) a##b
#define GAPPLY_CONCAT(a, b) GAPPLY_CONCAT_INNER(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
#define ASSIGN_OR_RETURN(lhs, rexpr) \
  ASSIGN_OR_RETURN_IMPL(GAPPLY_CONCAT(_res_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                          \
  if (!tmp.ok()) return tmp.status();          \
  lhs = std::move(tmp).value()

#endif  // GAPPLY_COMMON_RESULT_H_
