#ifndef GAPPLY_COMMON_STRING_UTIL_H_
#define GAPPLY_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace gapply {

/// ASCII lowercase copy (SQL keywords and identifiers are case-insensitive).
std::string ToLower(const std::string& s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Repeats `s` `n` times (plan-tree indentation helper).
std::string Repeat(const std::string& s, int n);

}  // namespace gapply

#endif  // GAPPLY_COMMON_STRING_UTIL_H_
