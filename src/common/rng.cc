#include "src/common/rng.h"

namespace gapply {

uint64_t Rng::Next() {
  state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::UniformDouble(double lo, double hi) {
  const double unit = static_cast<double>(Next() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble(0.0, 1.0) < p;
}

std::string Rng::RandomWord(int length) {
  std::string out;
  out.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + UniformInt(0, 25)));
  }
  return out;
}

}  // namespace gapply
