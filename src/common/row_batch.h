#ifndef GAPPLY_COMMON_ROW_BATCH_H_
#define GAPPLY_COMMON_ROW_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/value.h"

namespace gapply {

/// \brief The unit of vectorized data flow: a resizable block of rows with a
/// target capacity.
///
/// Operators move batches, not rows, through the pipeline
/// (`PhysOp::NextBatch`), amortizing per-row virtual dispatch and expression
/// interpretation. `capacity` is a *scheduling hint*, not a hard bound: an
/// operator should stop appending once `full()`, but may overshoot when its
/// output is produced in indivisible chunks (all matches of one probe row in
/// a hash join, one group's entire PGQ output in GApply). Consumers must
/// therefore never assume `size() <= capacity()`.
class RowBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit RowBatch(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    rows_.reserve(capacity_);
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  bool full() const { return rows_.size() >= capacity_; }

  /// Drops the rows but keeps the allocation.
  void Clear() { rows_.clear(); }

  void Add(Row row) { rows_.push_back(std::move(row)); }

  Row& operator[](size_t i) { return rows_[i]; }
  const Row& operator[](size_t i) const { return rows_[i]; }

  std::vector<Row>& rows() { return rows_; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
  size_t capacity_;
};

}  // namespace gapply

#endif  // GAPPLY_COMMON_ROW_BATCH_H_
