#include "src/common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace gapply {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return "null";
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kDouble:
      return "double";
    case TypeId::kString:
      return "string";
  }
  return "unknown";
}

bool IsNumeric(TypeId type) {
  return type == TypeId::kInt64 || type == TypeId::kDouble;
}

TypeId Value::type() const {
  switch (data_.index()) {
    case 0:
      return TypeId::kNull;
    case 1:
      return TypeId::kBool;
    case 2:
      return TypeId::kInt64;
    case 3:
      return TypeId::kDouble;
    case 4:
      return TypeId::kString;
  }
  return TypeId::kNull;
}

double Value::AsDouble() const {
  switch (type()) {
    case TypeId::kBool:
      return bool_val() ? 1.0 : 0.0;
    case TypeId::kInt64:
      return static_cast<double>(int_val());
    case TypeId::kDouble:
      return double_val();
    default:
      return 0.0;
  }
}

Result<int> Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Status::TypeError("Compare requires non-NULL operands");
  }
  const TypeId ta = a.type();
  const TypeId tb = b.type();
  if (IsNumeric(ta) && IsNumeric(tb)) {
    if (ta == TypeId::kInt64 && tb == TypeId::kInt64) {
      const int64_t x = a.int_val();
      const int64_t y = b.int_val();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (ta != tb) {
    return Status::TypeError(std::string("cannot compare ") + TypeName(ta) +
                             " with " + TypeName(tb));
  }
  switch (ta) {
    case TypeId::kBool: {
      const int x = a.bool_val() ? 1 : 0;
      const int y = b.bool_val() ? 1 : 0;
      return x - y;
    }
    case TypeId::kString: {
      const int c = a.str_val().compare(b.str_val());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return Status::TypeError("unsupported comparison");
  }
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  const TypeId ta = type();
  const TypeId tb = other.type();
  if (IsNumeric(ta) && IsNumeric(tb)) {
    if (ta == TypeId::kInt64 && tb == TypeId::kInt64) {
      return int_val() == other.int_val();
    }
    return AsDouble() == other.AsDouble();
  }
  if (ta != tb) return false;
  return data_ == other.data_;
}

size_t Value::Hash() const {
  switch (type()) {
    case TypeId::kNull:
      return 0x9e3779b97f4a7c15ull;
    case TypeId::kBool:
      return std::hash<bool>()(bool_val());
    case TypeId::kInt64:
      // Hash integers through double so that 2 and 2.0 collide, matching
      // Equals' numeric cross-type equality.
      return std::hash<double>()(static_cast<double>(int_val()));
    case TypeId::kDouble:
      return std::hash<double>()(double_val());
    case TypeId::kString:
      return std::hash<std::string>()(str_val());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return bool_val() ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(int_val());
    case TypeId::kDouble: {
      std::ostringstream oss;
      oss << double_val();
      return oss.str();
    }
    case TypeId::kString:
      return str_val();
  }
  return "?";
}

size_t RowHash::operator()(const Row& row) const {
  size_t h = 0x345678u;
  for (const Value& v : row) {
    h = HashCombine(h, v.Hash());
  }
  return h;
}

size_t HashRowColumns(const Row& row, const std::vector<int>& cols) {
  size_t h = 0x345678u;
  for (int c : cols) {
    h = HashCombine(h, row[static_cast<size_t>(c)].Hash());
  }
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  return RowsEqual(a, b);
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

namespace value_ops {

namespace {

// Shared numeric binary-op plumbing: NULL propagation, numeric type checks,
// int64 fast path vs double promotion.
Result<Value> NumericBinary(const char* op_name, const Value& a,
                            const Value& b,
                            int64_t (*int_fn)(int64_t, int64_t),
                            double (*dbl_fn)(double, double)) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!IsNumeric(a.type()) || !IsNumeric(b.type())) {
    return Status::TypeError(std::string(op_name) + " requires numeric " +
                             "operands, got " + TypeName(a.type()) + " and " +
                             TypeName(b.type()));
  }
  if (a.type() == TypeId::kInt64 && b.type() == TypeId::kInt64) {
    return Value::Int(int_fn(a.int_val(), b.int_val()));
  }
  return Value::Double(dbl_fn(a.AsDouble(), b.AsDouble()));
}

}  // namespace

Result<Value> Add(const Value& a, const Value& b) {
  return NumericBinary(
      "add", a, b, [](int64_t x, int64_t y) { return x + y; },
      [](double x, double y) { return x + y; });
}

Result<Value> Subtract(const Value& a, const Value& b) {
  return NumericBinary(
      "subtract", a, b, [](int64_t x, int64_t y) { return x - y; },
      [](double x, double y) { return x - y; });
}

Result<Value> Multiply(const Value& a, const Value& b) {
  return NumericBinary(
      "multiply", a, b, [](int64_t x, int64_t y) { return x * y; },
      [](double x, double y) { return x * y; });
}

Result<Value> Divide(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!IsNumeric(a.type()) || !IsNumeric(b.type())) {
    return Status::TypeError("divide requires numeric operands");
  }
  if (a.type() == TypeId::kInt64 && b.type() == TypeId::kInt64) {
    if (b.int_val() == 0) return Status::InvalidArgument("division by zero");
    return Value::Int(a.int_val() / b.int_val());
  }
  if (b.AsDouble() == 0.0) return Status::InvalidArgument("division by zero");
  return Value::Double(a.AsDouble() / b.AsDouble());
}

Result<Value> Modulo(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.type() != TypeId::kInt64 || b.type() != TypeId::kInt64) {
    return Status::TypeError("modulo requires int64 operands");
  }
  if (b.int_val() == 0) return Status::InvalidArgument("modulo by zero");
  return Value::Int(a.int_val() % b.int_val());
}

Result<Value> Negate(const Value& a) {
  if (a.is_null()) return Value::Null();
  switch (a.type()) {
    case TypeId::kInt64:
      return Value::Int(-a.int_val());
    case TypeId::kDouble:
      return Value::Double(-a.double_val());
    default:
      return Status::TypeError("negate requires a numeric operand");
  }
}

Result<Value> CompareOp(CmpOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  ASSIGN_OR_RETURN(int c, Value::Compare(a, b));
  switch (op) {
    case CmpOp::kEq:
      return Value::Bool(c == 0);
    case CmpOp::kNe:
      return Value::Bool(c != 0);
    case CmpOp::kLt:
      return Value::Bool(c < 0);
    case CmpOp::kLe:
      return Value::Bool(c <= 0);
    case CmpOp::kGt:
      return Value::Bool(c > 0);
    case CmpOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Status::Internal("bad CmpOp");
}

namespace {

// Maps a Value to Kleene logic: 0 = false, 1 = true, 2 = unknown (NULL).
Result<int> ToKleene(const Value& v) {
  if (v.is_null()) return 2;
  if (v.type() != TypeId::kBool) {
    return Status::TypeError(std::string("boolean operator applied to ") +
                             TypeName(v.type()));
  }
  return v.bool_val() ? 1 : 0;
}

Value FromKleene(int k) {
  if (k == 2) return Value::Null();
  return Value::Bool(k == 1);
}

}  // namespace

Result<Value> And(const Value& a, const Value& b) {
  ASSIGN_OR_RETURN(int x, ToKleene(a));
  ASSIGN_OR_RETURN(int y, ToKleene(b));
  if (x == 0 || y == 0) return Value::Bool(false);
  if (x == 1 && y == 1) return Value::Bool(true);
  return Value::Null();
}

Result<Value> Or(const Value& a, const Value& b) {
  ASSIGN_OR_RETURN(int x, ToKleene(a));
  ASSIGN_OR_RETURN(int y, ToKleene(b));
  if (x == 1 || y == 1) return Value::Bool(true);
  if (x == 0 && y == 0) return Value::Bool(false);
  return Value::Null();
}

Result<Value> Not(const Value& a) {
  ASSIGN_OR_RETURN(int x, ToKleene(a));
  if (x == 2) return Value::Null();
  return FromKleene(x == 1 ? 0 : 1);
}

}  // namespace value_ops

}  // namespace gapply
