#ifndef GAPPLY_TPCH_TPCH_GEN_H_
#define GAPPLY_TPCH_TPCH_GEN_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/storage/catalog.h"

namespace gapply::tpch {

/// \brief Sizing and seeding knobs for the synthetic TPC-H subset.
///
/// The paper's experiments use TPC-H at 5 GB on a 2003-era server; the
/// benches here run the same query shapes at laptop scale. Row counts follow
/// the TPC-H ratios (supplier : part : partsupp = 10k : 200k : 800k per
/// scale factor unit), scaled by `scale_factor` and floored to keep tiny
/// configurations meaningful.
struct TpchConfig {
  double scale_factor = 0.01;
  uint64_t seed = 42;

  /// Number of suppliers for this configuration (>= 10).
  int64_t NumSuppliers() const;
  /// Number of parts for this configuration (>= 40).
  int64_t NumParts() const;
  /// Suppliers per part (TPC-H uses 4).
  int64_t SuppliersPerPart() const { return 4; }
};

/// Populates `catalog` with region, nation, supplier, part and partsupp
/// tables, their primary keys, and the foreign keys
/// partsupp→part, partsupp→supplier, supplier→nation, nation→region.
///
/// Generation is fully deterministic in `config.seed`.
Status Generate(const TpchConfig& config, Catalog* catalog);

/// TPC-H's p_retailprice formula: (90000 + ((key/10) mod 20001) +
/// 100*(key mod 1000)) / 100. Exposed so tests and benches can compute
/// expected prices and selectivity cutoffs analytically.
double RetailPrice(int64_t partkey);

}  // namespace gapply::tpch

#endif  // GAPPLY_TPCH_TPCH_GEN_H_
