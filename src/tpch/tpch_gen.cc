#include "src/tpch/tpch_gen.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace gapply::tpch {

namespace {

constexpr const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                        "MIDDLE EAST"};

constexpr const char* kNationNames[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

// Region of each nation, aligned with kNationNames (TPC-H Appendix values).
constexpr int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                                 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

std::string PaddedKeyName(const char* prefix, int64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%09lld", static_cast<long long>(key));
  return std::string(prefix) + buf;
}

Status BuildRegion(Catalog* catalog) {
  Schema schema({{"r_regionkey", TypeId::kInt64, "region"},
                 {"r_name", TypeId::kString, "region"}});
  auto table = std::make_unique<Table>("region", std::move(schema));
  for (int64_t i = 0; i < 5; ++i) {
    RETURN_NOT_OK(
        table->Append({Value::Int(i), Value::Str(kRegionNames[i])}));
  }
  RETURN_NOT_OK(catalog->AddTable(std::move(table)));
  return catalog->SetPrimaryKey("region", {"r_regionkey"});
}

Status BuildNation(Catalog* catalog) {
  Schema schema({{"n_nationkey", TypeId::kInt64, "nation"},
                 {"n_name", TypeId::kString, "nation"},
                 {"n_regionkey", TypeId::kInt64, "nation"}});
  auto table = std::make_unique<Table>("nation", std::move(schema));
  for (int64_t i = 0; i < 25; ++i) {
    RETURN_NOT_OK(table->Append({Value::Int(i), Value::Str(kNationNames[i]),
                                 Value::Int(kNationRegion[i])}));
  }
  RETURN_NOT_OK(catalog->AddTable(std::move(table)));
  RETURN_NOT_OK(catalog->SetPrimaryKey("nation", {"n_nationkey"}));
  return catalog->AddForeignKey(
      {"nation", {"n_regionkey"}, "region", {"r_regionkey"}});
}

Status BuildSupplier(const TpchConfig& config, Rng* rng, Catalog* catalog) {
  Schema schema({{"s_suppkey", TypeId::kInt64, "supplier"},
                 {"s_name", TypeId::kString, "supplier"},
                 {"s_nationkey", TypeId::kInt64, "supplier"},
                 {"s_acctbal", TypeId::kDouble, "supplier"}});
  auto table = std::make_unique<Table>("supplier", std::move(schema));
  const int64_t n = config.NumSuppliers();
  for (int64_t key = 1; key <= n; ++key) {
    RETURN_NOT_OK(table->Append(
        {Value::Int(key), Value::Str(PaddedKeyName("Supplier#", key)),
         Value::Int(rng->UniformInt(0, 24)),
         Value::Double(rng->UniformDouble(-999.99, 9999.99))}));
  }
  RETURN_NOT_OK(catalog->AddTable(std::move(table)));
  RETURN_NOT_OK(catalog->SetPrimaryKey("supplier", {"s_suppkey"}));
  return catalog->AddForeignKey(
      {"supplier", {"s_nationkey"}, "nation", {"n_nationkey"}});
}

Status BuildPart(const TpchConfig& config, Rng* rng, Catalog* catalog) {
  Schema schema({{"p_partkey", TypeId::kInt64, "part"},
                 {"p_name", TypeId::kString, "part"},
                 {"p_mfgr", TypeId::kString, "part"},
                 {"p_brand", TypeId::kString, "part"},
                 {"p_size", TypeId::kInt64, "part"},
                 {"p_retailprice", TypeId::kDouble, "part"}});
  auto table = std::make_unique<Table>("part", std::move(schema));
  const int64_t n = config.NumParts();
  for (int64_t key = 1; key <= n; ++key) {
    const int64_t mfgr = rng->UniformInt(1, 5);
    const int64_t brand = mfgr * 10 + rng->UniformInt(1, 5);
    RETURN_NOT_OK(table->Append(
        {Value::Int(key),
         Value::Str(rng->RandomWord(6) + " " + rng->RandomWord(7)),
         Value::Str("Manufacturer#" + std::to_string(mfgr)),
         Value::Str("Brand#" + std::to_string(brand)),
         Value::Int(rng->UniformInt(1, 50)),
         Value::Double(RetailPrice(key))}));
  }
  RETURN_NOT_OK(catalog->AddTable(std::move(table)));
  return catalog->SetPrimaryKey("part", {"p_partkey"});
}

Status BuildPartsupp(const TpchConfig& config, Rng* rng, Catalog* catalog) {
  Schema schema({{"ps_partkey", TypeId::kInt64, "partsupp"},
                 {"ps_suppkey", TypeId::kInt64, "partsupp"},
                 {"ps_availqty", TypeId::kInt64, "partsupp"},
                 {"ps_supplycost", TypeId::kDouble, "partsupp"}});
  auto table = std::make_unique<Table>("partsupp", std::move(schema));
  const int64_t parts = config.NumParts();
  const int64_t suppliers = config.NumSuppliers();
  const int64_t per_part = config.SuppliersPerPart();
  std::vector<bool> used(static_cast<size_t>(suppliers) + 1);
  for (int64_t pk = 1; pk <= parts; ++pk) {
    std::vector<int64_t> chosen;
    for (int64_t j = 0; j < per_part; ++j) {
      // TPC-H supplier spreading formula. It is collision-free at real TPC-H
      // scale but not for the tiny supplier counts used in tests, so probe
      // linearly past any duplicate within this part.
      int64_t sk =
          (pk + j * (suppliers / per_part + (pk - 1) / suppliers)) %
              suppliers +
          1;
      while (used[static_cast<size_t>(sk)]) sk = sk % suppliers + 1;
      used[static_cast<size_t>(sk)] = true;
      chosen.push_back(sk);
      RETURN_NOT_OK(table->Append(
          {Value::Int(pk), Value::Int(sk),
           Value::Int(rng->UniformInt(1, 9999)),
           Value::Double(rng->UniformDouble(1.0, 1000.0))}));
    }
    for (int64_t sk : chosen) used[static_cast<size_t>(sk)] = false;
  }
  RETURN_NOT_OK(catalog->AddTable(std::move(table)));
  RETURN_NOT_OK(
      catalog->SetPrimaryKey("partsupp", {"ps_partkey", "ps_suppkey"}));
  RETURN_NOT_OK(catalog->AddForeignKey(
      {"partsupp", {"ps_partkey"}, "part", {"p_partkey"}}));
  return catalog->AddForeignKey(
      {"partsupp", {"ps_suppkey"}, "supplier", {"s_suppkey"}});
}

}  // namespace

int64_t TpchConfig::NumSuppliers() const {
  return std::max<int64_t>(10, static_cast<int64_t>(10000 * scale_factor));
}

int64_t TpchConfig::NumParts() const {
  return std::max<int64_t>(40, static_cast<int64_t>(200000 * scale_factor));
}

double RetailPrice(int64_t partkey) {
  return (90000.0 + static_cast<double>((partkey / 10) % 20001) +
          100.0 * static_cast<double>(partkey % 1000)) /
         100.0;
}

Status Generate(const TpchConfig& config, Catalog* catalog) {
  Rng rng(config.seed);
  RETURN_NOT_OK(BuildRegion(catalog));
  RETURN_NOT_OK(BuildNation(catalog));
  RETURN_NOT_OK(BuildSupplier(config, &rng, catalog));
  RETURN_NOT_OK(BuildPart(config, &rng, catalog));
  return BuildPartsupp(config, &rng, catalog);
}

}  // namespace gapply::tpch
