// A tour of the paper's transformation rules (§4): for each rule, a query
// where it applies, the plan before and after, and the fired-rule log.
//
// Run:  ./build/examples/optimizer_tour

#include <cstdio>
#include <string>

#include "src/engine/database.h"

namespace {

void Show(gapply::Database* db, const char* title, const std::string& sql) {
  std::printf("==================================================\n");
  std::printf("%s\n", title);
  std::printf("==================================================\n");
  std::printf("SQL: %s\n\n", sql.c_str());
  gapply::Result<std::string> e = db->Explain(sql);
  if (!e.ok()) {
    std::printf("error: %s\n\n", e.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", e->c_str());
}

}  // namespace

int main() {
  using namespace gapply;

  Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  if (Status st = db.LoadTpch(config); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  Show(&db,
       "GApplyToGroupBy + ProjectionBeforeGApply: aggregate-only per-group "
       "query collapses to a plain GROUP BY",
       "select gapply(select avg(p_retailprice) from g) "
       "from partsupp, part where ps_partkey = p_partkey "
       "group by ps_suppkey : g");

  Show(&db,
       "SelectionBeforeGApply (Theorem 1): the per-group brand filter's "
       "covering range moves into the outer query and pushes below the join",
       "select gapply(select p_name, p_retailprice from g "
       "              where p_brand = 'Brand#11') "
       "from partsupp, part where ps_partkey = p_partkey "
       "group by ps_suppkey : g");

  Show(&db,
       "GroupSelectionExists (Figure 5): per-group EXISTS over a selective "
       "predicate becomes extract-qualifying-keys + rejoin",
       "select gapply(select * from g where exists "
       "              (select p_retailprice from g "
       "               where p_retailprice > 1099)) "
       "from partsupp, part where ps_partkey = p_partkey "
       "group by ps_suppkey : g");

  Show(&db,
       "GroupSelectionAggregate (§4.2): per-group aggregate condition "
       "becomes GROUP BY + HAVING-style filter + rejoin",
       "select gapply(select * from g where "
       "              (select avg(p_retailprice) from g) > 1000) "
       "from partsupp, part where ps_partkey = p_partkey "
       "group by ps_suppkey : g");

  Show(&db,
       "Q2 (paper §2) through the full rule set",
       "select gapply(select count(*), null from g "
       "              where p_retailprice >= "
       "                    (select avg(p_retailprice) from g) "
       "              union all "
       "              select null, count(*) from g "
       "              where p_retailprice < "
       "                    (select avg(p_retailprice) from g)) "
       "       as (count_above, count_below) "
       "from partsupp, part where ps_partkey = p_partkey "
       "group by ps_suppkey : g");
  return 0;
}
