// Quickstart: load the synthetic TPC-H subset, run the paper's Q1 in the
// extended gapply syntax (§3.1), and print the clustered result.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "src/engine/database.h"

int main() {
  using namespace gapply;

  Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.001;  // 10 suppliers, 200 parts, 800 partsupp
  if (Status st = db.LoadTpch(config); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Q1 (paper §2): for each supplier, all (p_name, p_retailprice) pairs of
  // the parts it supplies plus the average retail price of those parts —
  // one GApply, no redundant join.
  const std::string q1 =
      "select gapply(select p_name, p_retailprice, null from tmpsupp "
      "              union all "
      "              select null, null, avg(p_retailprice) from tmpsupp) "
      "       as (p_name, p_retailprice, avg_price) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : tmpsupp";

  Result<std::string> plan = db.Explain(q1);
  if (!plan.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", plan->c_str());

  QueryStats stats;
  Result<QueryResult> result = db.Query(q1, QueryOptions{}, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu rows; first 12:\n%s\n", result->rows.size(),
              result->ToString(12).c_str());
  std::printf("per-group query executions: %llu (one per supplier)\n",
              static_cast<unsigned long long>(stats.counters.pgq_executions));
  return 0;
}
