// XML publishing end to end: define the paper's Figure-1 supplier/part
// view, translate it to ONE sorted-outer-union query, execute it, and feed
// the clustered rows through the constant-space tagger to produce the XML
// document.
//
// Run:  ./build/examples/xml_publishing

#include <cstdio>

#include "src/engine/database.h"
#include "src/xml/tagger.h"
#include "src/xml/view.h"

int main() {
  using namespace gapply;

  Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.0005;  // tiny: whole document fits on screen-ish
  if (Status st = db.LoadTpch(config); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  Result<xml::XmlView> view = xml::MakeSupplierPartsView(*db.catalog());
  if (!view.ok()) {
    std::fprintf(stderr, "%s\n", view.status().ToString().c_str());
    return 1;
  }
  Result<xml::SouqPlan> souq = xml::BuildSortedOuterUnion(*view);
  if (!souq.ok()) {
    std::fprintf(stderr, "%s\n", souq.status().ToString().c_str());
    return 1;
  }

  std::printf("=== sorted outer union plan ===\n%s\n",
              souq->plan->DebugString().c_str());

  Result<QueryResult> rows = db.Execute(*souq->plan, QueryOptions{});
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }

  // Stream rows through the tagger; print only the first chunk of the
  // document (the tagger itself is constant-space regardless of size).
  std::string doc;
  xml::Tagger tagger(*souq, [&](const std::string& s) { doc += s; });
  tagger.Begin(view->root_element);
  for (const Row& row : rows->rows) {
    if (Status st = tagger.Feed(row); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (Status st = tagger.Finish(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const size_t preview = doc.size() < 4000 ? doc.size() : 4000;
  std::printf("=== document (%zu bytes, %zu tuples) ===\n%.*s%s\n",
              doc.size(), rows->rows.size(), static_cast<int>(preview),
              doc.c_str(), preview < doc.size() ? "\n... (truncated)" : "");
  return 0;
}
