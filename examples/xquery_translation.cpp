// XQuery-lite middleware demo: the paper's motivating workflow. A FLWR
// query over the Figure-1 XML view is translated two ways — the classic
// sorted-outer-union SQL (§2, redundant joins + correlated subqueries) and
// the §3.1 gapply SQL — and both are executed against the engine.
//
// Run:  ./build/examples/xquery_translation

#include <chrono>
#include <cstdio>

#include "src/engine/database.h"
#include "src/xml/xquery.h"

namespace {

using Clock = std::chrono::steady_clock;

double RunMs(gapply::Database* db, const std::string& sql, size_t* rows) {
  const auto start = Clock::now();
  gapply::Result<gapply::QueryResult> r = db->Query(sql);
  const auto end = Clock::now();
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\nSQL: %s\n",
                 r.status().ToString().c_str(), sql.c_str());
    return -1;
  }
  *rows = r->rows.size();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  using namespace gapply;

  Database db;
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  if (Status st = db.LoadTpch(config); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  xml::FlwrViewBinding view;
  view.child_from = "partsupp, part";
  view.child_where = "ps_partkey = p_partkey";
  view.parent_key = "ps_suppkey";
  view.key_table = "partsupp";

  // Paper Q2 in FLWR form:
  //   For $s in /doc(tpch.xml)/suppliers/supplier
  //   Return <ret> count($s/part[p_retailprice >= avg(...)]),
  //                count($s/part[p_retailprice <  avg(...)]) </ret>
  xml::FlwrQuery q2;
  for (BinaryOp cmp : {BinaryOp::kGe, BinaryOp::kLt}) {
    xml::FlwrReturnItem item;
    item.kind = xml::FlwrReturnItem::Kind::kCountCompareAgg;
    item.agg = AggKind::kAvg;
    item.agg_column = "p_retailprice";
    item.cmp = cmp;
    q2.ret.push_back(item);
  }

  Result<std::string> gapply_sql = xml::TranslateToGApplySql(q2, view);
  Result<std::string> baseline_sql = xml::TranslateToOuterUnionSql(q2, view);
  if (!gapply_sql.ok() || !baseline_sql.ok()) {
    std::fprintf(stderr, "translation failed\n");
    return 1;
  }

  std::printf("=== gapply translation (push-down, one join) ===\n%s\n\n",
              gapply_sql->c_str());
  std::printf("=== outer-union translation (classic §2) ===\n%s\n\n",
              baseline_sql->c_str());

  size_t rows_g = 0, rows_b = 0;
  const double ms_g = RunMs(&db, *gapply_sql, &rows_g);
  const double ms_b = RunMs(&db, *baseline_sql, &rows_b);
  if (ms_g < 0 || ms_b < 0) return 1;
  std::printf("gapply:      %7.2f ms   (%zu rows)\n", ms_g, rows_g);
  std::printf("outer union: %7.2f ms   (%zu rows)\n", ms_b, rows_b);
  std::printf("speedup:     %7.2fx\n", ms_b / ms_g);
  return 0;
}
